//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt. Backs egglog's `Rational` base sort
/// and the mini-Herbie interval analysis. The paper notes (§6.2) that one
/// Herbie benchmark overflowed egglog's fixed-width rational type; we avoid
/// that failure mode entirely by using arbitrary precision.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_RATIONAL_H
#define EGGLOG_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <string>

namespace egglog {

/// An exact rational number. Invariants: the denominator is positive and
/// gcd(|num|, den) == 1; zero is 0/1.
class Rational {
public:
  /// Constructs zero.
  Rational() : Num(0), Den(1) {}

  /// Constructs Numerator/Denominator; asserts Denominator != 0.
  Rational(BigInt Numerator, BigInt Denominator);

  /// Constructs an integer rational.
  Rational(int64_t Value) : Num(Value), Den(1) {}

  /// Constructs the exact value of a finite double. Asserts the input is
  /// finite (doubles are scaled binary rationals, so this is lossless).
  static Rational fromDouble(double Value);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isInteger() const { return Den.isOne(); }
  int sign() const { return Num.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational &Other) const;
  Rational operator-(const Rational &Other) const;
  Rational operator*(const Rational &Other) const;
  /// Asserts Other != 0.
  Rational operator/(const Rational &Other) const;

  /// Reciprocal; asserts the value is nonzero.
  Rational inverse() const;

  /// Absolute value.
  Rational abs() const;

  /// Smaller / larger of two rationals.
  static Rational min(const Rational &A, const Rational &B);
  static Rational max(const Rational &A, const Rational &B);

  /// A lower bound on the square root, accurate to within 2^-Precision.
  /// Asserts the value is non-negative.
  Rational sqrtLower(unsigned Precision = 48) const;
  /// An upper bound on the square root. Asserts the value is non-negative.
  Rational sqrtUpper(unsigned Precision = 48) const;

  /// A lower bound on the cube root, accurate to within 2^-Precision.
  Rational cbrtLower(unsigned Precision = 48) const;
  /// An upper bound on the cube root.
  Rational cbrtUpper(unsigned Precision = 48) const;

  /// Raises to an integer power (negative exponents invert; asserts nonzero
  /// base for negative exponents).
  Rational pow(int64_t Exponent) const;

  /// Outward rounding to a dyadic rational with at most \p Bits of
  /// precision: roundDown returns the largest such value <= *this,
  /// roundUp the smallest >= *this. Chained exact interval arithmetic
  /// grows numerators/denominators without bound; rounding bounds the cost
  /// while keeping interval endpoints conservative.
  Rational roundDown(unsigned Bits = 64) const;
  Rational roundUp(unsigned Bits = 64) const;

  int compare(const Rational &Other) const;
  bool operator==(const Rational &Other) const {
    return Num == Other.Num && Den == Other.Den;
  }
  bool operator!=(const Rational &Other) const { return !(*this == Other); }
  bool operator<(const Rational &Other) const { return compare(Other) < 0; }
  bool operator<=(const Rational &Other) const { return compare(Other) <= 0; }
  bool operator>(const Rational &Other) const { return compare(Other) > 0; }
  bool operator>=(const Rational &Other) const { return compare(Other) >= 0; }

  /// Nearest double (round-to-nearest via long-division of the parts).
  double toDouble() const;

  /// Renders as "num" or "num/den".
  std::string toString() const;

  size_t hash() const;

private:
  BigInt Num;
  BigInt Den;

  void normalize();
  /// Square root bound helper: returns floor or ceiling of sqrt(*this)
  /// scaled by 2^Precision.
  Rational sqrtBound(unsigned Precision, bool RoundUp) const;
  Rational cbrtBound(unsigned Precision, bool RoundUp) const;
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_RATIONAL_H
