//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over BigInt. Backs egglog's `Rational` base sort
/// and the mini-Herbie interval analysis. The paper notes (§6.2) that one
/// Herbie benchmark overflowed egglog's fixed-width rational type; we avoid
/// that failure mode entirely by using arbitrary precision.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_RATIONAL_H
#define EGGLOG_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <string>

namespace egglog {

/// An exact rational number, extended with the two infinities. Invariants:
/// for finite values the denominator is positive and gcd(|num|, den) == 1,
/// zero is 0/1; the infinities are +/-1 over 0 and are only produced by
/// the factories below (never by the constructors, which still reject a
/// zero denominator). Infinities exist for the interval analyses: a bound
/// whose magnitude blows past the representation cap saturates outward to
/// +/-inf instead of failing, staying sound while staying cheap.
class Rational {
public:
  /// Constructs zero.
  Rational() : Num(0), Den(1) {}

  /// Constructs Numerator/Denominator; asserts Denominator != 0.
  Rational(BigInt Numerator, BigInt Denominator);

  /// Constructs an integer rational.
  Rational(int64_t Value) : Num(Value), Den(1) {}

  /// Constructs the exact value of a finite double. Asserts the input is
  /// finite (doubles are scaled binary rationals, so this is lossless).
  static Rational fromDouble(double Value);

  /// The extended-real infinities (the interval lattice's bottom bounds).
  static Rational posInfinity();
  static Rational negInfinity();
  /// Infinity with the sign of \p Sign (which must be nonzero).
  static Rational infinity(int Sign);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isFinite() const { return !Den.isZero(); }
  bool isPosInfinity() const { return Den.isZero() && !Num.isNegative(); }
  bool isNegInfinity() const { return Den.isZero() && Num.isNegative(); }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isInteger() const { return Den.isOne(); }
  int sign() const { return Num.sign(); }

  /// Arithmetic follows the extended reals where defined. The
  /// indeterminate forms — inf - inf, 0 * inf, inf / inf — assert;
  /// callers that can meet them (the interval primitives) must test with
  /// the *Defined predicates first and fail their match instead.
  Rational operator-() const;
  Rational operator+(const Rational &Other) const;
  Rational operator-(const Rational &Other) const;
  Rational operator*(const Rational &Other) const;
  /// Asserts Other != 0 and not inf/inf. A finite value over an infinity
  /// is exactly 0 (the outward-rounded interval endpoint).
  Rational operator/(const Rational &Other) const;

  static bool addDefined(const Rational &A, const Rational &B) {
    return A.isFinite() || B.isFinite() || A.isNegative() == B.isNegative();
  }
  static bool subDefined(const Rational &A, const Rational &B) {
    return A.isFinite() || B.isFinite() || A.isNegative() != B.isNegative();
  }
  static bool mulDefined(const Rational &A, const Rational &B) {
    return !(!A.isFinite() && B.isZero()) && !(!B.isFinite() && A.isZero());
  }
  static bool divDefined(const Rational &A, const Rational &B) {
    return !B.isZero() && (A.isFinite() || B.isFinite());
  }

  /// Reciprocal; asserts the value is nonzero (1/inf is exactly 0).
  Rational inverse() const;

  /// Absolute value.
  Rational abs() const;

  /// Smaller / larger of two rationals.
  static Rational min(const Rational &A, const Rational &B);
  static Rational max(const Rational &A, const Rational &B);

  /// A lower bound on the square root, accurate to within 2^-Precision.
  /// Asserts the value is non-negative.
  Rational sqrtLower(unsigned Precision = 48) const;
  /// An upper bound on the square root. Asserts the value is non-negative.
  Rational sqrtUpper(unsigned Precision = 48) const;

  /// A lower bound on the cube root, accurate to within 2^-Precision.
  Rational cbrtLower(unsigned Precision = 48) const;
  /// An upper bound on the cube root.
  Rational cbrtUpper(unsigned Precision = 48) const;

  /// Raises to an integer power (negative exponents invert; asserts nonzero
  /// base for negative exponents).
  Rational pow(int64_t Exponent) const;

  /// Outward rounding to a dyadic rational with at most \p Bits of
  /// precision: roundDown returns the largest such value <= *this,
  /// roundUp the smallest >= *this. Chained exact interval arithmetic
  /// grows numerators/denominators without bound; rounding bounds the cost
  /// while keeping interval endpoints conservative.
  Rational roundDown(unsigned Bits = 64) const;
  Rational roundUp(unsigned Bits = 64) const;

  int compare(const Rational &Other) const;
  bool operator==(const Rational &Other) const {
    return Num == Other.Num && Den == Other.Den;
  }
  bool operator!=(const Rational &Other) const { return !(*this == Other); }
  bool operator<(const Rational &Other) const { return compare(Other) < 0; }
  bool operator<=(const Rational &Other) const { return compare(Other) <= 0; }
  bool operator>(const Rational &Other) const { return compare(Other) > 0; }
  bool operator>=(const Rational &Other) const { return compare(Other) >= 0; }

  /// Nearest double (round-to-nearest via long-division of the parts).
  double toDouble() const;

  /// Renders as "num" or "num/den".
  std::string toString() const;

  size_t hash() const;

private:
  BigInt Num;
  BigInt Den;

  void normalize();
  /// Square root bound helper: returns floor or ceiling of sqrt(*this)
  /// scaled by 2^Precision.
  Rational sqrtBound(unsigned Precision, bool RoundUp) const;
  Rational cbrtBound(unsigned Precision, bool RoundUp) const;
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_RATIONAL_H
