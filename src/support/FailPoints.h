//===- support/FailPoints.h - Deterministic fault injection ----*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md ("Failure atomicity") for the rules on
// where failpoints may be placed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named failpoints for deterministic fault injection in tests. A failpoint
/// is a named program site (`EGGLOG_FAILPOINT("table.insert")`) that tests
/// can arm to throw an InjectedFault on the k-th hit, letting the fuzz
/// harness probe every intermediate state of a command for rollback
/// atomicity.
///
/// The macro compiles to nothing unless EGGLOG_FAILPOINTS_ENABLED is
/// defined (the test build defines it; release/bench builds do not), so the
/// steady-state cost in shipping binaries is exactly zero — bench_governor
/// records `failpoints_compiled` so the claim is checkable from the bench
/// artifact.
///
/// Hit counting is a single process-global atomic, so "the k-th hit" is
/// deterministic for serial commands and well-defined (first-to-increment)
/// under parallel match. Failpoints must never be placed on rollback or
/// restore paths — those are the error handlers and must be noexcept in
/// practice.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_FAILPOINTS_H
#define EGGLOG_SUPPORT_FAILPOINTS_H

#include <cstdint>
#include <exception>

namespace egglog {

/// Thrown by an armed failpoint. Carries the site name (a string literal,
/// so no allocation happens on the throw path).
class InjectedFault : public std::exception {
public:
  explicit InjectedFault(const char *Site) : Site(Site) {}
  const char *site() const { return Site; }
  const char *what() const noexcept override { return "injected fault"; }

private:
  const char *Site;
};

namespace failpoints {

#if EGGLOG_FAILPOINTS_ENABLED

/// Arms the harness: the FireAtHit-th subsequent hit (1-based) of a
/// failpoint whose name matches Site throws InjectedFault. A null or empty
/// Site matches every failpoint. FireAtHit == 0 counts hits without ever
/// firing (used to size the sweep). Resets the hit counter.
void arm(const char *Site, uint64_t FireAtHit);

/// Disarms the harness; hits stop counting.
void disarm();

/// Hits matched (against the armed site filter) since the last arm().
uint64_t hits();

/// Internal: called by the macro at every compiled-in failpoint.
void hit(const char *Site);

#endif // EGGLOG_FAILPOINTS_ENABLED

} // namespace failpoints
} // namespace egglog

#if EGGLOG_FAILPOINTS_ENABLED
#define EGGLOG_FAILPOINT(NAME) ::egglog::failpoints::hit(NAME)
#else
#define EGGLOG_FAILPOINT(NAME)                                                 \
  do {                                                                         \
  } while (false)
#endif

#endif // EGGLOG_SUPPORT_FAILPOINTS_H
