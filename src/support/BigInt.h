//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of egglog-cpp, a reproduction of "Better Together: Unifying Datalog
// and Equality Saturation" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integer arithmetic. This is the substrate for
/// the exact Rational type used by egglog's `Rational` base sort and by the
/// mini-Herbie interval analysis (Fig. 10 of the paper), where interval
/// endpoints must not overflow. Sign-magnitude representation with 32-bit
/// limbs stored little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_BIGINT_H
#define EGGLOG_SUPPORT_BIGINT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace egglog {

/// An arbitrary-precision signed integer.
///
/// Invariants: the limb vector never has trailing zero limbs, and zero is
/// represented by an empty limb vector with a non-negative sign.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a native signed integer.
  BigInt(int64_t Value);

  /// Parses a decimal string with optional leading '-'. Returns std::nullopt
  /// semantics via the \p Ok flag: on failure, *this is zero and \p Ok is
  /// set to false.
  static BigInt fromString(std::string_view Text, bool &Ok);

  /// Returns true if this integer is zero.
  bool isZero() const { return Limbs.empty(); }

  /// Returns true if this integer is strictly negative.
  bool isNegative() const { return Negative; }

  /// Returns true if this integer is one.
  bool isOne() const { return !Negative && Limbs.size() == 1 && Limbs[0] == 1; }

  /// Returns the sign as -1, 0, or +1.
  int sign() const { return isZero() ? 0 : (Negative ? -1 : 1); }

  /// Returns true if the value fits in int64_t.
  bool fitsInt64() const;

  /// Converts to int64_t; asserts fitsInt64().
  int64_t toInt64() const;

  /// Converts to the nearest double (may round; returns +/-inf on overflow).
  double toDouble() const;

  /// Renders as a decimal string.
  std::string toString() const;

  /// Three-way comparison: -1, 0, or +1 as *this <, ==, > Other.
  int compare(const BigInt &Other) const;

  BigInt operator-() const;
  BigInt operator+(const BigInt &Other) const;
  BigInt operator-(const BigInt &Other) const;
  BigInt operator*(const BigInt &Other) const;

  /// Truncated division (C semantics: rounds toward zero).
  BigInt operator/(const BigInt &Other) const;

  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt operator%(const BigInt &Other) const;

  /// Computes quotient and remainder in one pass. Asserts Divisor != 0.
  static void divmod(const BigInt &Dividend, const BigInt &Divisor,
                     BigInt &Quotient, BigInt &Remainder);

  /// Greatest common divisor; always non-negative.
  static BigInt gcd(BigInt A, BigInt B);

  /// Raises this to a small non-negative power.
  BigInt pow(uint64_t Exponent) const;

  /// Integer square root: the greatest S with S*S <= *this.
  /// Asserts the value is non-negative.
  BigInt isqrt() const;

  /// Multiplies by 2^Bits (Bits >= 0).
  BigInt shiftLeft(unsigned Bits) const;

  /// Number of significant bits (0 for zero).
  unsigned bitWidth() const;

  bool operator==(const BigInt &Other) const {
    return Negative == Other.Negative && Limbs == Other.Limbs;
  }
  bool operator!=(const BigInt &Other) const { return !(*this == Other); }
  bool operator<(const BigInt &Other) const { return compare(Other) < 0; }
  bool operator<=(const BigInt &Other) const { return compare(Other) <= 0; }
  bool operator>(const BigInt &Other) const { return compare(Other) > 0; }
  bool operator>=(const BigInt &Other) const { return compare(Other) >= 0; }

  /// Hashes the value (suitable for unordered containers).
  size_t hash() const;

private:
  bool Negative = false;
  std::vector<uint32_t> Limbs;

  void normalize();
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_BIGINT_H
