//===- support/Hashing.h - Hash utilities ----------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash combinators shared by the table indexes, hashcons maps and interners.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_HASHING_H
#define EGGLOG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace egglog {

/// Mixes a new value into a running hash (boost-style combinator with a
/// 64-bit golden-ratio constant).
inline size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 12) + (Seed >> 4));
}

/// Finalizer from MurmurHash3 for avalanche on small integer keys.
inline uint64_t hashMix(uint64_t Key) {
  Key ^= Key >> 33;
  Key *= 0xff51afd7ed558ccdull;
  Key ^= Key >> 33;
  Key *= 0xc4ceb9fe1a85ec53ull;
  Key ^= Key >> 33;
  return Key;
}

/// Hashes a contiguous run of 64-bit words (FNV-1a over words, then mixed).
inline uint64_t hashWords(const uint64_t *Words, size_t Count) {
  uint64_t Hash = 1469598103934665603ull;
  for (size_t I = 0; I < Count; ++I) {
    Hash ^= Words[I];
    Hash *= 1099511628211ull;
  }
  return hashMix(Hash);
}

} // namespace egglog

#endif // EGGLOG_SUPPORT_HASHING_H
