//===- support/DoubleDouble.h - Double-double arithmetic -------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compensated "double-double" arithmetic (~106 bits of precision) built
/// from error-free transformations (TwoSum / TwoProd-with-FMA, after
/// Dekker and Knuth). The mini-Herbie error model (§6.2) uses this as its
/// high-precision ground truth in place of the MPFR evaluation the real
/// Herbie uses: 106 bits against binary64's 53 is ample headroom for
/// measuring bits of error.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_DOUBLEDOUBLE_H
#define EGGLOG_SUPPORT_DOUBLEDOUBLE_H

#include <cmath>
#include <limits>

namespace egglog {

/// An unevaluated sum Hi + Lo with |Lo| <= ulp(Hi)/2.
struct DoubleDouble {
  double Hi = 0;
  double Lo = 0;

  DoubleDouble() = default;
  DoubleDouble(double Value) : Hi(Value), Lo(0) {}
  DoubleDouble(double Hi, double Lo) : Hi(Hi), Lo(Lo) {}

  double toDouble() const { return Hi + Lo; }
  bool isFinite() const { return std::isfinite(Hi) && std::isfinite(Lo); }

  /// Error-free sum: a + b = s + e exactly (Knuth's TwoSum).
  static DoubleDouble twoSum(double A, double B) {
    double S = A + B;
    double V = S - A;
    double E = (A - (S - V)) + (B - V);
    return DoubleDouble(S, E);
  }

  /// Error-free product via FMA: a * b = p + e exactly.
  static DoubleDouble twoProd(double A, double B) {
    double P = A * B;
    double E = std::fma(A, B, -P);
    return DoubleDouble(P, E);
  }

  /// Renormalizes a (Hi, Lo) pair into canonical form.
  static DoubleDouble quickTwoSum(double A, double B) {
    double S = A + B;
    double E = B - (S - A);
    return DoubleDouble(S, E);
  }

  DoubleDouble operator+(const DoubleDouble &Other) const {
    DoubleDouble S = twoSum(Hi, Other.Hi);
    S.Lo += Lo + Other.Lo;
    return quickTwoSum(S.Hi, S.Lo);
  }

  DoubleDouble operator-() const { return DoubleDouble(-Hi, -Lo); }
  DoubleDouble operator-(const DoubleDouble &Other) const {
    return *this + (-Other);
  }

  DoubleDouble operator*(const DoubleDouble &Other) const {
    DoubleDouble P = twoProd(Hi, Other.Hi);
    P.Lo += Hi * Other.Lo + Lo * Other.Hi;
    return quickTwoSum(P.Hi, P.Lo);
  }

  DoubleDouble operator/(const DoubleDouble &Other) const {
    // One step of Newton refinement over the double quotient.
    double Q1 = Hi / Other.Hi;
    DoubleDouble R = *this - Other * DoubleDouble(Q1);
    double Q2 = R.Hi / Other.Hi;
    DoubleDouble R2 = R - Other * DoubleDouble(Q2);
    double Q3 = R2.Hi / Other.Hi;
    DoubleDouble Result = quickTwoSum(Q1, Q2);
    Result.Lo += Q3;
    return quickTwoSum(Result.Hi, Result.Lo);
  }

  /// Square root by Newton refinement of the double approximation.
  DoubleDouble sqrt() const {
    if (Hi == 0 && Lo == 0)
      return DoubleDouble(0);
    if (Hi < 0)
      return DoubleDouble(std::numeric_limits<double>::quiet_NaN());
    double Approx = std::sqrt(Hi);
    // x' = x + (v - x^2) / (2x).
    DoubleDouble X(Approx);
    DoubleDouble Residual = *this - X * X;
    DoubleDouble Correction = Residual / (X + X);
    return X + Correction;
  }

  /// Cube root by Newton refinement (odd function; handles negatives).
  DoubleDouble cbrt() const {
    if (Hi == 0 && Lo == 0)
      return DoubleDouble(0);
    double Approx = std::cbrt(Hi);
    DoubleDouble X(Approx);
    // x' = x + (v - x^3) / (3 x^2).
    DoubleDouble X2 = X * X;
    DoubleDouble Residual = *this - X2 * X;
    DoubleDouble Correction = Residual / (X2 * 3.0);
    return X + Correction;
  }

  DoubleDouble abs() const { return Hi < 0 ? -*this : *this; }

  bool operator<(const DoubleDouble &Other) const {
    return Hi < Other.Hi || (Hi == Other.Hi && Lo < Other.Lo);
  }
  bool operator==(const DoubleDouble &Other) const {
    return Hi == Other.Hi && Lo == Other.Lo;
  }
};

/// Fused multiply-add in double-double: a*b + c.
inline DoubleDouble fmaDD(const DoubleDouble &A, const DoubleDouble &B,
                          const DoubleDouble &C) {
  return A * B + C;
}

} // namespace egglog

#endif // EGGLOG_SUPPORT_DOUBLEDOUBLE_H
