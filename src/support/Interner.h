//===- support/Interner.h - String interning -------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings (and other hashable values) to dense 32-bit ids so that
/// egglog Values can carry interned payloads in a fixed-size word.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_INTERNER_H
#define EGGLOG_SUPPORT_INTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace egglog {

/// Interns strings to dense ids; lookups in both directions are O(1).
class StringInterner {
public:
  /// Returns the id for \p Text, creating it if needed.
  uint32_t intern(const std::string &Text) {
    auto It = Ids.find(Text);
    if (It != Ids.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.push_back(Text);
    Ids.emplace(Text, Id);
    return Id;
  }

  /// Returns the string for an id previously returned by intern().
  const std::string &lookup(uint32_t Id) const {
    assert(Id < Strings.size() && "unknown interned id");
    return Strings[Id];
  }

  /// Lookup without interning: sets \p Id and returns true if \p Text is
  /// already interned. The snapshot loader uses this to remap a snapshot's
  /// interner ids onto a live database without mutating it.
  bool find(const std::string &Text, uint32_t &Id) const {
    auto It = Ids.find(Text);
    if (It == Ids.end())
      return false;
    Id = It->second;
    return true;
  }

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Ids;
};

/// Interns arbitrary hashable, equality-comparable values to dense ids.
template <typename T, typename Hash = std::hash<T>> class ValueInterner {
public:
  uint32_t intern(const T &Value) {
    auto It = Ids.find(Value);
    if (It != Ids.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Values.size());
    Values.push_back(Value);
    Ids.emplace(Value, Id);
    return Id;
  }

  const T &lookup(uint32_t Id) const {
    assert(Id < Values.size() && "unknown interned id");
    return Values[Id];
  }

  /// Lookup without interning (see StringInterner::find).
  bool find(const T &Value, uint32_t &Id) const {
    auto It = Ids.find(Value);
    if (It == Ids.end())
      return false;
    Id = It->second;
    return true;
  }

  size_t size() const { return Values.size(); }

private:
  std::vector<T> Values;
  std::unordered_map<T, uint32_t, Hash> Ids;
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_INTERNER_H
