//===- support/Governor.h - Resource governance ----------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md ("Failure atomicity and resource
// governance") for checkpoint placement rules.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ResourceGovernor turns resource limits into bounded-latency stops.
/// Legacy RunOptions limits (TimeoutSeconds, NodeLimit) stop the engine
/// gracefully at iteration granularity; the governor's limits are hard: any
/// trip raises an ErrKind::Limit (or Cancelled) error and the current
/// command rolls back. Inner loops (match, apply, rebuild, extract) call a
/// checkpoint every N rows, so the stop latency is bounded by the work in N
/// rows, not by a whole engine iteration.
///
/// Thread-safety: pollQuick() touches only the deadline and the atomic
/// cancel flag and may be called from match workers. The full poll()
/// additionally compares live-tuple and byte counts supplied by the caller
/// and is meant for serial checkpoints (apply/rebuild/extract run on the
/// coordinating thread; parallel match never grows tables).
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_GOVERNOR_H
#define EGGLOG_SUPPORT_GOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace egglog {

enum class GovernorVerdict : uint8_t {
  Ok,
  Timeout,
  NodeLimit,
  MemoryLimit,
  Cancelled,
};

class ResourceGovernor {
public:
  using Clock = std::chrono::steady_clock;

  /// Per-command wall-clock budget in seconds; 0 disables. The deadline is
  /// re-armed at every command start (arm()), so the budget is per command,
  /// not per session.
  void setTimeout(double Seconds) { TimeoutSeconds = Seconds; }
  double timeout() const { return TimeoutSeconds; }

  /// Ceiling on live tuples across all tables; 0 disables.
  void setMaxLive(size_t Max) { MaxLive = Max; }
  size_t maxLive() const { return MaxLive; }

  /// Ceiling on approximate bytes allocated by tables + union-find; 0
  /// disables. Approximate: container capacities, not allocator truth.
  void setMaxBytes(size_t Max) { MaxBytes = Max; }
  size_t maxBytes() const { return MaxBytes; }

  /// Cooperative cancellation, safe from any thread (e.g. a signal handler
  /// shim or an embedding host's watchdog). Sticky until the next arm().
  void requestCancel() { CancelFlag.store(true, std::memory_order_release); }

  /// Called at command start: re-arms the deadline and clears a stale
  /// cancel request left over from a previous command's trip.
  void arm() {
    CancelFlag.store(false, std::memory_order_release);
    if (TimeoutSeconds > 0)
      Deadline = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(TimeoutSeconds));
    HasDeadline = TimeoutSeconds > 0;
  }

  /// Deadline + cancellation only. Cheap enough for worker threads.
  GovernorVerdict pollQuick() const {
    if (CancelFlag.load(std::memory_order_acquire))
      return GovernorVerdict::Cancelled;
    if (HasDeadline && Clock::now() >= Deadline)
      return GovernorVerdict::Timeout;
    return GovernorVerdict::Ok;
  }

  /// Full poll with caller-supplied resource counts.
  GovernorVerdict poll(size_t LiveTuples, size_t ApproxBytes) const {
    GovernorVerdict Quick = pollQuick();
    if (Quick != GovernorVerdict::Ok)
      return Quick;
    if (MaxLive && LiveTuples > MaxLive)
      return GovernorVerdict::NodeLimit;
    if (MaxBytes && ApproxBytes > MaxBytes)
      return GovernorVerdict::MemoryLimit;
    return GovernorVerdict::Ok;
  }

  bool anyLimitSet() const {
    return TimeoutSeconds > 0 || MaxLive || MaxBytes ||
           CancelFlag.load(std::memory_order_acquire);
  }

  /// Rows between full checkpoints in the serial inner loops. Test-settable
  /// to make trips land deterministically; 1024 bounds stop latency to ~a
  /// thousand row visits while keeping the amortized cost unmeasurable.
  void setCheckpointInterval(uint32_t Rows) {
    CheckpointInterval = Rows ? Rows : 1;
  }
  uint32_t checkpointInterval() const { return CheckpointInterval; }

private:
  double TimeoutSeconds = 0;
  size_t MaxLive = 0;
  size_t MaxBytes = 0;
  uint32_t CheckpointInterval = 1024;
  bool HasDeadline = false;
  Clock::time_point Deadline{};
  std::atomic<bool> CancelFlag{false};
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_GOVERNOR_H
