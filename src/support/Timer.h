//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small steady-clock stopwatch used by the benchmark harnesses that
/// regenerate the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_TIMER_H
#define EGGLOG_SUPPORT_TIMER_H

#include <chrono>

namespace egglog {

/// Measures elapsed wall-clock time from construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace egglog

#endif // EGGLOG_SUPPORT_TIMER_H
