//===- support/FailPoints.cpp - Deterministic fault injection ------------===//
//
// Part of egglog-cpp. Whole file compiles away when failpoints are disabled
// (release and bench builds), keeping the harness strictly zero-cost there.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoints.h"

#if EGGLOG_FAILPOINTS_ENABLED

#include <atomic>
#include <cstring>

namespace egglog {
namespace failpoints {

namespace {

// The armed site filter is a raw pointer to a string literal owned by the
// arming test; tests must disarm before the literal's TU unloads (never an
// issue in practice — literals live in rodata for the process lifetime).
std::atomic<const char *> ArmedSite{nullptr};
std::atomic<uint64_t> FireAt{0};
std::atomic<uint64_t> Hits{0};
std::atomic<bool> Armed{false};

bool matches(const char *Site) {
  const char *Filter = ArmedSite.load(std::memory_order_acquire);
  if (!Filter || !*Filter)
    return true;
  return std::strcmp(Filter, Site) == 0;
}

} // namespace

void arm(const char *Site, uint64_t FireAtHit) {
  Hits.store(0, std::memory_order_relaxed);
  ArmedSite.store(Site, std::memory_order_release);
  FireAt.store(FireAtHit, std::memory_order_release);
  Armed.store(true, std::memory_order_release);
}

void disarm() { Armed.store(false, std::memory_order_release); }

uint64_t hits() { return Hits.load(std::memory_order_acquire); }

void hit(const char *Site) {
  if (!Armed.load(std::memory_order_acquire))
    return;
  if (!matches(Site))
    return;
  uint64_t Hit = Hits.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t Target = FireAt.load(std::memory_order_acquire);
  if (Target != 0 && Hit == Target)
    throw InjectedFault(Site);
}

} // namespace failpoints
} // namespace egglog

#endif // EGGLOG_FAILPOINTS_ENABLED
