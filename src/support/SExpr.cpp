//===- support/SExpr.cpp - S-expression reader ---------------------------===//
//
// Part of egglog-cpp. See SExpr.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/SExpr.h"

#include "support/NumberFormat.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace egglog;

SExpr SExpr::makeSymbol(std::string Name, unsigned Line) {
  SExpr Node;
  Node.NodeKind = Kind::Symbol;
  Node.Text = std::move(Name);
  Node.Line = Line;
  return Node;
}

SExpr SExpr::makeInteger(int64_t Value, unsigned Line) {
  SExpr Node;
  Node.NodeKind = Kind::Integer;
  Node.IntValue = Value;
  Node.Line = Line;
  return Node;
}

SExpr SExpr::makeString(std::string Value, unsigned Line) {
  SExpr Node;
  Node.NodeKind = Kind::String;
  Node.Text = std::move(Value);
  Node.Line = Line;
  return Node;
}

SExpr SExpr::makeList(std::vector<SExpr> Elements, unsigned Line) {
  SExpr Node;
  Node.NodeKind = Kind::List;
  Node.Elements = std::move(Elements);
  Node.Line = Line;
  return Node;
}

std::string SExpr::toString() const {
  switch (NodeKind) {
  case Kind::Symbol:
    return Text;
  case Kind::Integer:
    return std::to_string(IntValue);
  case Kind::Float:
    return formatF64(FloatValue);
  case Kind::String: {
    std::string Result = "\"";
    for (char C : Text) {
      if (C == '"' || C == '\\')
        Result.push_back('\\');
      Result.push_back(C);
    }
    Result.push_back('"');
    return Result;
  }
  case Kind::List: {
    std::string Result = "(";
    for (size_t I = 0; I < Elements.size(); ++I) {
      if (I)
        Result.push_back(' ');
      Result += Elements[I].toString();
    }
    Result.push_back(')');
    return Result;
  }
  }
  return "";
}

namespace {

/// Recursive-descent reader over a source buffer.
class Reader {
public:
  Reader(std::string_view Source, ParseResult &Result)
      : Source(Source), Result(Result) {}

  void readAll() {
    while (true) {
      skipSpace();
      if (Position >= Source.size() || !Result.Ok)
        return;
      SExpr Form = readForm();
      if (!Result.Ok)
        return;
      Result.Forms.push_back(std::move(Form));
    }
  }

private:
  std::string_view Source;
  ParseResult &Result;
  size_t Position = 0;
  unsigned Line = 1;
  /// Offset of the first byte of the current line; the 1-based column of
  /// the cursor is Position - LineStartPos + 1.
  size_t LineStartPos = 0;

  unsigned col() const {
    return static_cast<unsigned>(Position - LineStartPos + 1);
  }

  void fail(const std::string &Message) {
    if (!Result.Ok)
      return;
    Result.Ok = false;
    Result.Error = Message;
    Result.ErrorLine = Line;
    Result.ErrorCol = col();
  }

  void skipSpace() {
    while (Position < Source.size()) {
      char C = Source[Position];
      if (C == '\n') {
        ++Line;
        ++Position;
        LineStartPos = Position;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Position;
      } else if (C == ';') {
        while (Position < Source.size() && Source[Position] != '\n')
          ++Position;
      } else {
        return;
      }
    }
  }

  SExpr readForm() {
    skipSpace();
    if (Position >= Source.size()) {
      fail("unexpected end of input");
      return SExpr();
    }
    char C = Source[Position];
    if (C == '(')
      return readList();
    if (C == ')') {
      fail("unexpected ')'");
      return SExpr();
    }
    if (C == '"')
      return readString();
    return readAtom();
  }

  SExpr readList() {
    unsigned StartLine = Line;
    unsigned StartCol = col();
    ++Position; // consume '('
    std::vector<SExpr> Elements;
    while (true) {
      skipSpace();
      if (Position >= Source.size()) {
        fail("unterminated list starting at line " +
             std::to_string(StartLine));
        return SExpr();
      }
      if (Source[Position] == ')') {
        ++Position;
        SExpr Node = SExpr::makeList(std::move(Elements), StartLine);
        Node.Col = StartCol;
        return Node;
      }
      SExpr Element = readForm();
      if (!Result.Ok)
        return SExpr();
      Elements.push_back(std::move(Element));
    }
  }

  SExpr readString() {
    unsigned StartLine = Line;
    unsigned StartCol = col();
    ++Position; // consume '"'
    std::string Contents;
    while (true) {
      if (Position >= Source.size()) {
        fail("unterminated string literal");
        return SExpr();
      }
      char C = Source[Position++];
      if (C == '"') {
        SExpr Node = SExpr::makeString(std::move(Contents), StartLine);
        Node.Col = StartCol;
        return Node;
      }
      if (C == '\n') {
        ++Line;
        LineStartPos = Position;
      }
      if (C == '\\') {
        if (Position >= Source.size()) {
          fail("unterminated escape in string literal");
          return SExpr();
        }
        char Escaped = Source[Position++];
        switch (Escaped) {
        case 'n':
          Contents.push_back('\n');
          break;
        case 't':
          Contents.push_back('\t');
          break;
        default:
          Contents.push_back(Escaped);
          break;
        }
        continue;
      }
      Contents.push_back(C);
    }
  }

  static bool isDelimiter(char C) {
    return C == '(' || C == ')' || C == '"' || C == ';' ||
           std::isspace(static_cast<unsigned char>(C));
  }

  SExpr readAtom() {
    unsigned StartLine = Line;
    unsigned StartCol = col();
    size_t Start = Position;
    while (Position < Source.size() && !isDelimiter(Source[Position]))
      ++Position;
    std::string_view Token = Source.substr(Start, Position - Start);
    // Numeric literal: optional sign, digits, optional fraction, optional
    // exponent (so shortest round-trip float output like 1e+20 reads back
    // in). Anything else is a symbol.
    size_t DigitsStart = (Token[0] == '-' || Token[0] == '+') ? 1 : 0;
    size_t Cursor = DigitsStart;
    size_t MantissaDigits = 0;
    while (Cursor < Token.size() &&
           std::isdigit(static_cast<unsigned char>(Token[Cursor]))) {
      ++Cursor;
      ++MantissaDigits;
    }
    bool HasDot = false;
    if (Cursor < Token.size() && Token[Cursor] == '.') {
      HasDot = true;
      ++Cursor;
      while (Cursor < Token.size() &&
             std::isdigit(static_cast<unsigned char>(Token[Cursor]))) {
        ++Cursor;
        ++MantissaDigits;
      }
    }
    bool HasExponent = false;
    if (MantissaDigits > 0 && Cursor < Token.size() &&
        (Token[Cursor] == 'e' || Token[Cursor] == 'E')) {
      size_t ExpCursor = Cursor + 1;
      if (ExpCursor < Token.size() &&
          (Token[ExpCursor] == '+' || Token[ExpCursor] == '-'))
        ++ExpCursor;
      size_t ExponentDigits = 0;
      while (ExpCursor < Token.size() &&
             std::isdigit(static_cast<unsigned char>(Token[ExpCursor]))) {
        ++ExpCursor;
        ++ExponentDigits;
      }
      if (ExponentDigits > 0 && ExpCursor == Token.size()) {
        HasExponent = true;
        Cursor = ExpCursor;
      }
    }
    bool AllDigits = MantissaDigits > 0 && Cursor == Token.size();
    if (AllDigits && !HasDot && !HasExponent) {
      errno = 0;
      char *End = nullptr;
      std::string Buffer(Token);
      long long Value = std::strtoll(Buffer.c_str(), &End, 10);
      if (errno == ERANGE || End != Buffer.c_str() + Buffer.size()) {
        fail("integer literal out of range: " + Buffer);
        return SExpr();
      }
      SExpr Node = SExpr::makeInteger(Value, StartLine);
      Node.Col = StartCol;
      return Node;
    }
    if (AllDigits) {
      std::string Buffer(Token);
      SExpr Node;
      Node.NodeKind = SExpr::Kind::Float;
      Node.FloatValue = std::strtod(Buffer.c_str(), nullptr);
      Node.Line = StartLine;
      Node.Col = StartCol;
      return Node;
    }
    SExpr Node = SExpr::makeSymbol(std::string(Token), StartLine);
    Node.Col = StartCol;
    return Node;
  }
};

} // namespace

ParseResult egglog::parseSExprs(std::string_view Source) {
  ParseResult Result;
  Reader R(Source, Result);
  R.readAll();
  return Result;
}
