//===- support/NumberFormat.h - Numeric value rendering --------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shortest round-trip formatting for f64 values. std::to_string renders
/// through "%f" with 6 fractional digits, which silently corrupts any
/// double needing more precision (0.30000000000000004 prints as 0.300000
/// and parses back to a different value). Every place a double leaves the
/// system as surface syntax — extraction, SExpr printing, Herbie candidate
/// terms — goes through formatF64 instead, which uses std::to_chars: the
/// shortest decimal string that parses back to exactly the same bits.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_NUMBERFORMAT_H
#define EGGLOG_SUPPORT_NUMBERFORMAT_H

#include <charconv>
#include <cmath>
#include <string>

namespace egglog {

/// Renders \p D as the shortest string that strtod parses back to the same
/// double. Integral values keep a ".0" suffix so the s-expression lexer
/// reads them back as floats, not integers. Infinities render as an
/// over-range literal (strtod saturates 1e999 back to +inf), so they stay
/// valid surface syntax; NaN has no literal and renders as a bare "nan"
/// symbol (not re-parseable — unchanged from the historical behavior).
inline std::string formatF64(double D) {
  if (std::isnan(D))
    return "nan";
  if (std::isinf(D))
    return D < 0 ? "-1e999" : "1e999";
  char Buffer[32];
  auto Result = std::to_chars(Buffer, Buffer + sizeof(Buffer), D);
  std::string Text(Buffer, Result.ptr);
  if (Text.find_first_of(".eE") == std::string::npos)
    Text += ".0";
  return Text;
}

} // namespace egglog

#endif // EGGLOG_SUPPORT_NUMBERFORMAT_H
