//===- support/Rational.cpp - Exact rational arithmetic ------------------===//
//
// Part of egglog-cpp. See Rational.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include <cassert>
#include <cmath>

using namespace egglog;

Rational::Rational(BigInt Numerator, BigInt Denominator)
    : Num(std::move(Numerator)), Den(std::move(Denominator)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt Divisor = BigInt::gcd(Num, Den);
  if (!Divisor.isOne()) {
    Num = Num / Divisor;
    Den = Den / Divisor;
  }
}

Rational Rational::fromDouble(double Value) {
  assert(std::isfinite(Value) && "rational from non-finite double");
  if (Value == 0.0)
    return Rational();
  int Exponent = 0;
  double Mantissa = std::frexp(Value, &Exponent);
  // Mantissa in [0.5, 1); scale out all 53 bits.
  int64_t Scaled = static_cast<int64_t>(std::ldexp(Mantissa, 53));
  Exponent -= 53;
  BigInt Num(Scaled), Den(1);
  if (Exponent >= 0)
    Num = Num.shiftLeft(static_cast<unsigned>(Exponent));
  else
    Den = Den.shiftLeft(static_cast<unsigned>(-Exponent));
  return Rational(std::move(Num), std::move(Den));
}

Rational Rational::posInfinity() { return infinity(1); }
Rational Rational::negInfinity() { return infinity(-1); }

Rational Rational::infinity(int Sign) {
  assert(Sign != 0 && "infinity needs a sign");
  // Bypasses the checked constructor: +/-1 over 0 is the one intentional
  // violation of the denominator invariant.
  Rational Result;
  Result.Num = BigInt(Sign > 0 ? 1 : -1);
  Result.Den = BigInt(0);
  return Result;
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::operator+(const Rational &Other) const {
  if (!isFinite() || !Other.isFinite()) {
    assert(addDefined(*this, Other) && "inf + -inf is indeterminate");
    return isFinite() ? Other : *this;
  }
  return Rational(Num * Other.Den + Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator-(const Rational &Other) const {
  if (!isFinite() || !Other.isFinite()) {
    assert(subDefined(*this, Other) && "inf - inf is indeterminate");
    return isFinite() ? -Other : *this;
  }
  return Rational(Num * Other.Den - Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator*(const Rational &Other) const {
  if (!isFinite() || !Other.isFinite()) {
    assert(mulDefined(*this, Other) && "0 * inf is indeterminate");
    return infinity(sign() * Other.sign());
  }
  return Rational(Num * Other.Num, Den * Other.Den);
}

Rational Rational::operator/(const Rational &Other) const {
  assert(!Other.isZero() && "rational division by zero");
  if (!Other.isFinite()) {
    assert(isFinite() && "inf / inf is indeterminate");
    return Rational();
  }
  if (!isFinite())
    return infinity(sign() * Other.sign());
  return Rational(Num * Other.Den, Den * Other.Num);
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  if (!isFinite())
    return Rational();
  return Rational(Den, Num);
}

Rational Rational::abs() const { return isNegative() ? -*this : *this; }

Rational Rational::min(const Rational &A, const Rational &B) {
  return A.compare(B) <= 0 ? A : B;
}

Rational Rational::max(const Rational &A, const Rational &B) {
  return A.compare(B) >= 0 ? A : B;
}

int Rational::compare(const Rational &Other) const {
  // Two infinities compare by sign; a single infinity falls out of the
  // cross-multiplication below (the finite side collapses to zero).
  if (!isFinite() && !Other.isFinite())
    return sign() < Other.sign() ? -1 : (sign() > Other.sign() ? 1 : 0);
  return (Num * Other.Den).compare(Other.Num * Den);
}

Rational Rational::sqrtBound(unsigned Precision, bool RoundUp) const {
  assert(!isNegative() && "sqrt of a negative rational");
  if (!isFinite())
    return *this; // sqrt(+inf) = +inf, both bounds
  // sqrt(n/d) ~= isqrt(n * d * 4^p) / (d * 2^p). The floor of that integer
  // square root gives a lower bound; adding one gives an upper bound.
  BigInt Scaled = (Num * Den).shiftLeft(2 * Precision);
  BigInt Root = Scaled.isqrt();
  if (RoundUp && Root * Root != Scaled)
    Root = Root + BigInt(1);
  return Rational(std::move(Root), Den.shiftLeft(Precision));
}

Rational Rational::sqrtLower(unsigned Precision) const {
  return sqrtBound(Precision, /*RoundUp=*/false);
}

Rational Rational::sqrtUpper(unsigned Precision) const {
  return sqrtBound(Precision, /*RoundUp=*/true);
}

/// Integer cube root: greatest S with S^3 <= V (V >= 0).
static BigInt icbrt(const BigInt &V) {
  if (V.isZero())
    return BigInt();
  // Binary search over the bit width.
  unsigned Bits = (V.bitWidth() + 2) / 3 + 1;
  BigInt Low(0), High = BigInt(1).shiftLeft(Bits);
  while (Low < High) {
    BigInt Mid = (Low + High + BigInt(1)) / BigInt(2);
    if (Mid * Mid * Mid <= V)
      Low = Mid;
    else
      High = Mid - BigInt(1);
  }
  return Low;
}

Rational Rational::cbrtBound(unsigned Precision, bool RoundUp) const {
  // cbrt(n/d) = cbrt(n * d^2) / d, scaled by 8^p for precision. Handles
  // negative inputs by symmetry (cbrt is odd).
  if (!isFinite())
    return *this; // cbrt(+/-inf) = +/-inf, both bounds
  if (isNegative()) {
    Rational Positive = -*this;
    return -Positive.cbrtBound(Precision, !RoundUp);
  }
  BigInt Scaled = (Num * Den * Den).shiftLeft(3 * Precision);
  BigInt Root = icbrt(Scaled);
  if (RoundUp && Root * Root * Root != Scaled)
    Root = Root + BigInt(1);
  return Rational(std::move(Root), Den.shiftLeft(Precision));
}

Rational Rational::cbrtLower(unsigned Precision) const {
  return cbrtBound(Precision, /*RoundUp=*/false);
}

Rational Rational::cbrtUpper(unsigned Precision) const {
  return cbrtBound(Precision, /*RoundUp=*/true);
}

Rational Rational::pow(int64_t Exponent) const {
  assert(isFinite() && "pow of an infinity");
  if (Exponent < 0)
    return inverse().pow(-Exponent);
  return Rational(Num.pow(static_cast<uint64_t>(Exponent)),
                  Den.pow(static_cast<uint64_t>(Exponent)));
}

namespace {

/// Shared implementation: round to a dyadic with ~Bits significant bits,
/// downward (toward -inf) when Down, upward otherwise.
Rational roundDyadic(const Rational &V, unsigned Bits, bool Down) {
  const BigInt &Num = V.numerator();
  const BigInt &Den = V.denominator();
  if (Num.bitWidth() <= Bits && Den.bitWidth() <= Bits)
    return V;
  // Scale so the quotient keeps ~Bits significant bits:
  // p = floor_or_ceil(num * 2^k / den) with k chosen from the bit widths.
  int Shift = static_cast<int>(Bits) + static_cast<int>(Den.bitWidth()) -
              static_cast<int>(Num.bitWidth());
  BigInt ScaledNum =
      Shift >= 0 ? Num.shiftLeft(static_cast<unsigned>(Shift)) : Num;
  BigInt ScaledDen =
      Shift >= 0 ? Den : Den.shiftLeft(static_cast<unsigned>(-Shift));
  BigInt Quotient, Remainder;
  BigInt::divmod(ScaledNum, ScaledDen, Quotient, Remainder);
  // divmod truncates toward zero; fix the direction.
  if (!Remainder.isZero()) {
    bool Negative = ScaledNum.isNegative();
    if (Down && Negative)
      Quotient = Quotient - BigInt(1);
    if (!Down && !Negative)
      Quotient = Quotient + BigInt(1);
  }
  BigInt Power =
      Shift >= 0 ? BigInt(1).shiftLeft(static_cast<unsigned>(Shift))
                 : BigInt(1);
  BigInt NumOut =
      Shift >= 0 ? Quotient : Quotient.shiftLeft(static_cast<unsigned>(-Shift));
  return Rational(std::move(NumOut), std::move(Power));
}

} // namespace

Rational Rational::roundDown(unsigned Bits) const {
  if (!isFinite())
    return *this;
  return roundDyadic(*this, Bits, /*Down=*/true);
}

Rational Rational::roundUp(unsigned Bits) const {
  if (!isFinite())
    return *this;
  return roundDyadic(*this, Bits, /*Down=*/false);
}

double Rational::toDouble() const {
  if (!isFinite())
    return isNegative() ? -HUGE_VAL : HUGE_VAL;
  // Scale so the quotient has ~64 significant bits, then divide natively.
  if (isZero())
    return 0.0;
  int ShiftBits = static_cast<int>(Den.bitWidth()) + 64 -
                  static_cast<int>(Num.bitWidth());
  BigInt ScaledNum = Num;
  int Exp = 0;
  if (ShiftBits > 0) {
    ScaledNum = Num.shiftLeft(static_cast<unsigned>(ShiftBits));
    Exp = -ShiftBits;
  }
  BigInt Quotient = ScaledNum / Den;
  return std::ldexp(Quotient.toDouble(), Exp);
}

std::string Rational::toString() const {
  if (!isFinite())
    return isNegative() ? "-inf" : "inf";
  if (Den.isOne())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}

size_t Rational::hash() const {
  return Num.hash() * 0x9e3779b97f4a7c15ull + Den.hash();
}
