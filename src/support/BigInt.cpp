//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
//
// Part of egglog-cpp. See BigInt.h for an overview.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace egglog;

BigInt::BigInt(int64_t Value) {
  Negative = Value < 0;
  // Avoid UB on INT64_MIN by negating in unsigned space.
  uint64_t Magnitude =
      Negative ? ~static_cast<uint64_t>(Value) + 1 : static_cast<uint64_t>(Value);
  if (Magnitude != 0)
    Limbs.push_back(static_cast<uint32_t>(Magnitude));
  if (Magnitude >> 32)
    Limbs.push_back(static_cast<uint32_t>(Magnitude >> 32));
  normalize();
}

void BigInt::normalize() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Negative = false;
}

BigInt BigInt::fromString(std::string_view Text, bool &Ok) {
  Ok = false;
  BigInt Result;
  size_t Index = 0;
  bool Neg = false;
  if (Index < Text.size() && (Text[Index] == '-' || Text[Index] == '+')) {
    Neg = Text[Index] == '-';
    ++Index;
  }
  if (Index >= Text.size())
    return Result;
  BigInt Ten(10);
  for (; Index < Text.size(); ++Index) {
    char C = Text[Index];
    if (C < '0' || C > '9')
      return BigInt();
    Result = Result * Ten + BigInt(C - '0');
  }
  Result.Negative = Neg && !Result.isZero();
  Ok = true;
  return Result;
}

bool BigInt::fitsInt64() const {
  if (Limbs.size() > 2)
    return false;
  uint64_t Magnitude = 0;
  if (!Limbs.empty())
    Magnitude = Limbs[0];
  if (Limbs.size() == 2)
    Magnitude |= static_cast<uint64_t>(Limbs[1]) << 32;
  if (Negative)
    return Magnitude <= static_cast<uint64_t>(1) << 63;
  return Magnitude <= static_cast<uint64_t>(INT64_MAX);
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "BigInt does not fit in int64_t");
  uint64_t Magnitude = 0;
  if (!Limbs.empty())
    Magnitude = Limbs[0];
  if (Limbs.size() == 2)
    Magnitude |= static_cast<uint64_t>(Limbs[1]) << 32;
  if (Negative)
    return static_cast<int64_t>(~Magnitude + 1);
  return static_cast<int64_t>(Magnitude);
}

double BigInt::toDouble() const {
  double Result = 0;
  for (size_t I = Limbs.size(); I-- > 0;)
    Result = Result * 4294967296.0 + Limbs[I];
  return Negative ? -Result : Result;
}

std::string BigInt::toString() const {
  if (isZero())
    return "0";
  // Repeated division by 10^9 to peel off decimal chunks.
  std::vector<uint32_t> Work = Limbs;
  std::string Digits;
  while (!Work.empty()) {
    uint64_t Remainder = 0;
    for (size_t I = Work.size(); I-- > 0;) {
      uint64_t Current = (Remainder << 32) | Work[I];
      Work[I] = static_cast<uint32_t>(Current / 1000000000u);
      Remainder = Current % 1000000000u;
    }
    while (!Work.empty() && Work.back() == 0)
      Work.pop_back();
    for (int I = 0; I < 9; ++I) {
      Digits.push_back(static_cast<char>('0' + Remainder % 10));
      Remainder /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Negative)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

int BigInt::compareMagnitude(const std::vector<uint32_t> &A,
                             const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

int BigInt::compare(const BigInt &Other) const {
  if (Negative != Other.Negative)
    return Negative ? -1 : 1;
  int MagnitudeOrder = compareMagnitude(Limbs, Other.Limbs);
  return Negative ? -MagnitudeOrder : MagnitudeOrder;
}

std::vector<uint32_t> BigInt::addMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  std::vector<uint32_t> Result;
  Result.reserve(std::max(A.size(), B.size()) + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < std::max(A.size(), B.size()); ++I) {
    uint64_t Sum = Carry;
    if (I < A.size())
      Sum += A[I];
    if (I < B.size())
      Sum += B[I];
    Result.push_back(static_cast<uint32_t>(Sum));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

std::vector<uint32_t> BigInt::subMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subtraction would underflow");
  std::vector<uint32_t> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow;
    if (I < B.size())
      Diff -= B[I];
    if (Diff < 0) {
      Diff += static_cast<int64_t>(1) << 32;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

std::vector<uint32_t> BigInt::mulMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> Result(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Current = static_cast<uint64_t>(A[I]) * B[J] + Result[I + J] +
                         Carry;
      Result[I + J] = static_cast<uint32_t>(Current);
      Carry = Current >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Current = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Current);
      Carry = Current >> 32;
      ++K;
    }
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

BigInt BigInt::operator-() const {
  BigInt Result = *this;
  if (!Result.isZero())
    Result.Negative = !Result.Negative;
  return Result;
}

BigInt BigInt::operator+(const BigInt &Other) const {
  BigInt Result;
  if (Negative == Other.Negative) {
    Result.Limbs = addMagnitude(Limbs, Other.Limbs);
    Result.Negative = Negative;
  } else if (compareMagnitude(Limbs, Other.Limbs) >= 0) {
    Result.Limbs = subMagnitude(Limbs, Other.Limbs);
    Result.Negative = Negative;
  } else {
    Result.Limbs = subMagnitude(Other.Limbs, Limbs);
    Result.Negative = Other.Negative;
  }
  Result.normalize();
  return Result;
}

BigInt BigInt::operator-(const BigInt &Other) const { return *this + (-Other); }

BigInt BigInt::operator*(const BigInt &Other) const {
  BigInt Result;
  Result.Limbs = mulMagnitude(Limbs, Other.Limbs);
  Result.Negative = Negative != Other.Negative && !Result.Limbs.empty();
  return Result;
}

void BigInt::divmod(const BigInt &Dividend, const BigInt &Divisor,
                    BigInt &Quotient, BigInt &Remainder) {
  assert(!Divisor.isZero() && "division by zero");
  // Schoolbook long division on the magnitudes, one bit at a time. This is
  // O(bits * limbs) which is plenty for the sizes egglog manipulates.
  Quotient = BigInt();
  Remainder = BigInt();
  unsigned Bits = Dividend.bitWidth();
  std::vector<uint32_t> Quot((Bits + 31) / 32, 0);
  BigInt AbsDivisor = Divisor;
  AbsDivisor.Negative = false;
  for (unsigned BitIndex = Bits; BitIndex-- > 0;) {
    // Remainder = Remainder * 2 + bit.
    Remainder = Remainder.shiftLeft(1);
    unsigned Limb = BitIndex / 32, Offset = BitIndex % 32;
    if ((Dividend.Limbs[Limb] >> Offset) & 1)
      Remainder = Remainder + BigInt(1);
    if (Remainder.compare(AbsDivisor) >= 0) {
      Remainder = Remainder - AbsDivisor;
      Quot[Limb] |= (1u << Offset);
    }
  }
  Quotient.Limbs = std::move(Quot);
  Quotient.normalize();
  Quotient.Negative =
      (Dividend.Negative != Divisor.Negative) && !Quotient.isZero();
  Remainder.Negative = Dividend.Negative && !Remainder.isZero();
}

BigInt BigInt::operator/(const BigInt &Other) const {
  BigInt Quotient, Remainder;
  divmod(*this, Other, Quotient, Remainder);
  return Quotient;
}

BigInt BigInt::operator%(const BigInt &Other) const {
  BigInt Quotient, Remainder;
  divmod(*this, Other, Quotient, Remainder);
  return Remainder;
}

BigInt BigInt::gcd(BigInt A, BigInt B) {
  A.Negative = false;
  B.Negative = false;
  while (!B.isZero()) {
    BigInt Remainder = A % B;
    A = std::move(B);
    B = std::move(Remainder);
  }
  return A;
}

BigInt BigInt::pow(uint64_t Exponent) const {
  BigInt Result(1), Base = *this;
  while (Exponent) {
    if (Exponent & 1)
      Result = Result * Base;
    Base = Base * Base;
    Exponent >>= 1;
  }
  return Result;
}

BigInt BigInt::isqrt() const {
  assert(!Negative && "isqrt of a negative value");
  if (isZero())
    return BigInt();
  // Newton's method starting from a power-of-two overestimate.
  unsigned Bits = bitWidth();
  BigInt X = BigInt(1).shiftLeft((Bits + 1) / 2);
  while (true) {
    BigInt Y = (X + *this / X) / BigInt(2);
    if (Y.compare(X) >= 0)
      break;
    X = std::move(Y);
  }
  return X;
}

BigInt BigInt::shiftLeft(unsigned Bits) const {
  if (isZero() || Bits == 0)
    return *this;
  BigInt Result;
  unsigned LimbShift = Bits / 32, BitShift = Bits % 32;
  Result.Limbs.assign(LimbShift, 0);
  uint32_t Carry = 0;
  for (uint32_t Limb : Limbs) {
    if (BitShift == 0) {
      Result.Limbs.push_back(Limb);
    } else {
      Result.Limbs.push_back((Limb << BitShift) | Carry);
      Carry = Limb >> (32 - BitShift);
    }
  }
  if (Carry)
    Result.Limbs.push_back(Carry);
  Result.Negative = Negative;
  Result.normalize();
  return Result;
}

unsigned BigInt::bitWidth() const {
  if (Limbs.empty())
    return 0;
  unsigned TopBits = 32;
  uint32_t Top = Limbs.back();
  while (TopBits > 0 && !(Top & (1u << (TopBits - 1))))
    --TopBits;
  return static_cast<unsigned>((Limbs.size() - 1) * 32) + TopBits;
}

size_t BigInt::hash() const {
  size_t Result = Negative ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t Limb : Limbs)
    Result = Result * 1099511628211ull + Limb;
  return Result;
}
