//===- support/SExpr.h - S-expression reader -------------------*- C++ -*-===//
//
// Part of egglog-cpp. See DESIGN.md for the system overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small s-expression reader for the egglog surface syntax (§3 of the
/// paper uses s-expressions throughout). Supports symbols, 64-bit integer
/// literals, double-quoted strings with escapes, and `;` line comments.
///
//===----------------------------------------------------------------------===//

#ifndef EGGLOG_SUPPORT_SEXPR_H
#define EGGLOG_SUPPORT_SEXPR_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace egglog {

/// A parsed s-expression node.
struct SExpr {
  enum class Kind { Symbol, Integer, Float, String, List };

  Kind NodeKind = Kind::List;
  /// Symbol spelling or string contents.
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  std::vector<SExpr> Elements;
  /// 1-based source line/column for diagnostics (0 = unknown).
  unsigned Line = 0;
  unsigned Col = 0;

  bool isSymbol() const { return NodeKind == Kind::Symbol; }
  bool isSymbol(std::string_view Name) const {
    return NodeKind == Kind::Symbol && Text == Name;
  }
  bool isInteger() const { return NodeKind == Kind::Integer; }
  bool isFloat() const { return NodeKind == Kind::Float; }
  bool isString() const { return NodeKind == Kind::String; }
  bool isList() const { return NodeKind == Kind::List; }
  size_t size() const { return Elements.size(); }
  const SExpr &operator[](size_t Index) const { return Elements[Index]; }

  /// Returns true if this is a list whose head is the given symbol.
  bool isCall(std::string_view Head) const {
    return isList() && !Elements.empty() && Elements[0].isSymbol(Head);
  }

  static SExpr makeSymbol(std::string Name, unsigned Line = 0);
  static SExpr makeInteger(int64_t Value, unsigned Line = 0);
  static SExpr makeString(std::string Value, unsigned Line = 0);
  static SExpr makeList(std::vector<SExpr> Elements, unsigned Line = 0);

  /// Renders back to text (for diagnostics and golden tests).
  std::string toString() const;
};

/// Result of parsing: either a list of top-level forms or an error message.
struct ParseResult {
  std::vector<SExpr> Forms;
  bool Ok = true;
  std::string Error;
  unsigned ErrorLine = 0;
  unsigned ErrorCol = 0;
};

/// Parses a whole source buffer into top-level forms.
ParseResult parseSExprs(std::string_view Source);

} // namespace egglog

#endif // EGGLOG_SUPPORT_SEXPR_H
